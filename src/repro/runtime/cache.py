"""Content-addressed result cache for experiment artifacts.

A task's identity is ``sha256(spec name, spec version, fully resolved
parameters, code fingerprint)``.  The fingerprint is *dependency
scoped*: :func:`spec_fingerprint` hashes only the transitive import
closure of the spec's producing module (static AST analysis via
:class:`~repro.runtime.deps.ImportGraph` — every file the produce-fn
can reach through ``import`` statements, and nothing else).  Editing
one leaf experiment file therefore invalidates that spec alone; the
other specs' manifests keep hitting.  A module the analyzer cannot
resolve inside the :mod:`repro` package falls back to the package-wide
:func:`code_fingerprint` (every ``.py`` under ``repro/``) — coarse,
but never under-invalidating.  Closure semantics are documented in
``docs/caching.md``.

Manifests are single JSON files under ``<cache root>/<spec>/<key>.json``
with deterministic byte encoding and no timestamps, so a manifest
produced by a pool worker is byte-identical to one produced serially.
The cache root defaults to ``.mbs-cache`` in the working directory and
can be overridden with ``--cache-dir`` or ``$MBS_REPRO_CACHE``.
"""
from __future__ import annotations

import contextlib
import functools
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.runtime.deps import ImportGraph
from repro.runtime.serialize import canonical_dumps, jsonify
from repro.runtime.spec import ExperimentSpec

#: environment override for the cache root
CACHE_ENV = "MBS_REPRO_CACHE"

MANIFEST_SCHEMA = ("spec", "version", "key", "fingerprint", "params",
                   "artifact", "rendered")


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_ENV)
    return Path(env) if env else Path(".mbs-cache")


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the installed ``repro`` package source (every file)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(path.relative_to(root).as_posix().encode())
        h.update(b"\0")
        h.update(path.read_bytes())
    return h.hexdigest()[:16]


@functools.lru_cache(maxsize=1)
def package_graph() -> ImportGraph:
    """Import graph of the installed ``repro`` package."""
    import repro

    return ImportGraph(Path(repro.__file__).resolve().parent, "repro")


@functools.lru_cache(maxsize=None)
def module_fingerprint(*modules: str) -> str:
    """Dependency-scoped digest of the given modules' import closures.

    Any module the static analyzer cannot resolve inside the ``repro``
    package (a spec defined in a test file, say) degrades the whole
    call to the package-wide :func:`code_fingerprint` — the safe
    over-approximation.
    """
    graph = package_graph()
    if not modules or not all(graph.covers(m) for m in modules):
        return code_fingerprint()
    return graph.fingerprint(modules)


def spec_fingerprint(spec: ExperimentSpec) -> str:
    """The fingerprint ``spec``'s cache keys are scoped to."""
    return module_fingerprint(spec.module)


def reset_fingerprint_caches() -> None:
    """Forget every memoized fingerprint and parsed import graph.

    Tests that edit package sources on disk (or monkeypatch the package
    location) call this so the next fingerprint request re-reads the
    tree instead of replaying a stale digest.
    """
    code_fingerprint.cache_clear()
    module_fingerprint.cache_clear()
    package_graph.cache_clear()


def task_key(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    fingerprint: str | None = None,
) -> str:
    """Content address of one (spec, params, code) combination.

    Without an explicit ``fingerprint`` the key is scoped to the spec's
    dependency closure via :func:`spec_fingerprint`.
    """
    blob = json.dumps(
        {
            "spec": spec.name,
            "version": spec.version,
            "params": jsonify(dict(params)),
            "code": fingerprint or spec_fingerprint(spec),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def build_manifest(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    key: str,
    fingerprint: str,
    artifact: Any,
    rendered: str,
) -> dict[str, Any]:
    return {
        "spec": spec.name,
        "version": spec.version,
        "key": key,
        "fingerprint": fingerprint,
        "params": jsonify(dict(params)),
        "artifact": artifact,
        "rendered": rendered,
    }


def manifest_bytes(manifest: Mapping[str, Any]) -> bytes:
    return (canonical_dumps(manifest) + "\n").encode()


class ResultCache:
    """JSON-manifest store addressed by :func:`task_key`."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path(self, spec_name: str, key: str) -> Path:
        return self.root / spec_name / f"{key}.json"

    def lookup(self, spec_name: str, key: str) -> dict[str, Any] | None:
        """Return the stored manifest, or None on miss/corruption."""
        path = self.path(spec_name, key)
        try:
            with open(path) as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if manifest.get("key") != key:
            return None
        return manifest

    def store(self, manifest: Mapping[str, Any]) -> Path:
        """Persist a manifest atomically (write-temp + rename)."""
        path = self.path(manifest["spec"], manifest["key"])
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(manifest_bytes(manifest))
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return path

    def entries(self, spec_name: str | None = None) -> Iterator[Path]:
        pattern = f"{spec_name or '*'}/*.json"
        yield from sorted(self.root.glob(pattern))

    def clear(self, spec_name: str | None = None) -> int:
        """Delete manifests (one spec's, or all); returns count removed."""
        removed = 0
        for path in self.entries(spec_name):
            path.unlink()
            removed += 1
        return removed
