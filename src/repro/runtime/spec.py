"""Declarative experiment specifications and the global registry.

An :class:`ExperimentSpec` describes everything the runtime needs to
schedule one paper artifact: the produce-fn that computes it, the
parameter space it sweeps over, the keys its result must contain, and
an optional renderer that pretty-prints a freshly produced result.

Modules in :mod:`repro.experiments` build a spec at import time and
:func:`register` it; the registry preserves registration order, which
defines the canonical experiment ordering for ``mbs-repro all``.
"""
from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence


@dataclass(frozen=True)
class ExperimentSpec:
    """One schedulable experiment.

    ``produce`` must be a module-level callable returning a dict (so it
    pickles by reference into pool workers).  ``render`` takes the live
    result of ``produce`` and prints the figure/table to stdout.
    """

    name: str
    title: str
    produce: Callable[..., dict]
    render: Callable[[dict], None] | None = None
    #: overrides applied on top of ``produce``'s signature defaults
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: cheaper parameters for CI / smoke runs (``--quick``)
    quick: Mapping[str, Any] = field(default_factory=dict)
    #: default sweep axes for ``mbs-repro sweep``: name -> value tuple
    sweep: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: keys the produced result must contain (artifact schema)
    artifact: tuple[str, ...] = ()
    #: per-task wall-clock budget; None inherits the engine default
    timeout_s: float | None = None
    #: bumping this invalidates cached results without a code change
    version: str = "1"

    @property
    def module(self) -> str:
        return self.produce.__module__

    def resolve_params(
        self,
        overrides: Mapping[str, Any] | None = None,
        quick: bool = False,
    ) -> dict[str, Any]:
        """Fully explicit parameter dict for one task.

        Signature defaults < spec defaults < quick overrides < caller
        overrides.  Making every parameter explicit keeps cache keys
        canonical: the same effective call always hashes identically.
        """
        params: dict[str, Any] = {}
        for p in inspect.signature(self.produce).parameters.values():
            if p.default is not inspect.Parameter.empty:
                params[p.name] = p.default
        params.update(self.defaults)
        if quick:
            params.update(self.quick)
        unknown = [k for k in (overrides or {}) if k not in params]
        if unknown:
            raise KeyError(
                f"{self.name}: unknown parameter(s) {unknown}; "
                f"accepted: {sorted(params)}"
            )
        params.update(overrides or {})
        return params

    def missing_artifact_keys(self, result: Mapping[str, Any]) -> list[str]:
        return [k for k in self.artifact if k not in result]


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the global registry (idempotent per module)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.module != spec.module:
        raise ValueError(
            f"experiment {spec.name!r} already registered by "
            f"{existing.module}"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: "
            f"{' '.join(_REGISTRY) or '(none)'}"
        ) from None


def all_specs() -> tuple[ExperimentSpec, ...]:
    return tuple(_REGISTRY.values())


def spec_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def expand_grid(axes: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """Cartesian product of sweep axes, in deterministic order.

    Axis order follows the mapping's insertion order; within an axis,
    values keep their given order — so the grid enumeration is stable
    across runs and worker counts.
    """
    if not axes:
        return [{}]
    names = list(axes)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(tuple(axes[n]) for n in names))
    ]
