"""Canonical JSON conversion for experiment artifacts and manifests.

Everything the runtime persists goes through :func:`jsonify` first, so
cache manifests are plain JSON regardless of which dataclasses, enums,
or numpy types a driver's ``run()`` returns — and :func:`canonical_dumps`
makes the byte encoding deterministic (sorted keys, fixed indent), which
is what lets tests assert that parallel and serial sweeps produce
byte-identical manifests.
"""
from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any


def jsonify(obj: Any) -> Any:
    """Recursively convert experiment results to JSON-compatible data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonify(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {_key(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "tolist"):  # numpy scalars/arrays
        return jsonify(obj.tolist())
    # schedules, reports, models: describe by repr
    return repr(obj)


def _key(k: Any) -> str:
    if isinstance(k, tuple):
        return "/".join(str(jsonify(x)) for x in k)
    if isinstance(k, enum.Enum):
        return str(k.value)
    return str(k)


def canonical_dumps(obj: Any) -> str:
    """Deterministic JSON text for ``obj`` (jsonified, sorted keys)."""
    return json.dumps(jsonify(obj), sort_keys=True, indent=1)
