"""Dynamic sweep work queue: jobs, leases, retries, poison points.

The queue is the coordinator-side state machine behind the serve
layer's ``/v1/jobs`` surface (:mod:`repro.serve.jobs`).  It is pure
bookkeeping — no HTTP, no threads, no wall clock of its own (callers
inject ``clock``; tests drive a fake one) — so lease expiry, bounded
retries, and quarantine are all unit-testable deterministically.

Life of a point::

    PENDING --lease()--> LEASED --complete()--> DONE
       ^                    |
       |   expiry / fail()  |  attempts < max_attempts
       +--------------------+
                            |  attempts >= max_attempts
                            +--> POISONED

A job's point grid comes from :func:`~repro.runtime.spec.expand_grid`
and is enumerated in the same deterministic order as a single-process
``mbs-repro sweep`` run; each point carries the content-addressed
:func:`~repro.runtime.cache.task_key` the coordinator expects its
manifest to land under.  An uploaded manifest whose key disagrees
(version-skewed worker code, wrong params) is rejected, which is the
whole byte-identity story: only manifests a local run would itself
have produced are ever accepted.

Completion is idempotent and never discards valid work: a manifest
arriving after its lease expired (slow worker, network partition that
healed) is still accepted if the point is not yet done and the key
matches — until the job is terminal, at which moment the job's leases
are pruned (the coordinator would otherwise retain every lease ever
granted).

With a :class:`~repro.runtime.journal.Journal` attached, every state
transition is appended to an fsync'd event log *before* it is
acknowledged, and :meth:`JobQueue.restore` rebuilds the exact queue —
pending/leased/done/poisoned, attempt counts, quarantine — from the
snapshot + log after a coordinator crash.  Leases outstanding at crash
time are conservatively expired on restore, so their points re-queue
under the normal retry budget.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.runtime.cache import task_key
from repro.runtime.serialize import jsonify
from repro.runtime.spec import ExperimentSpec

PENDING = "pending"
LEASED = "leased"
DONE = "done"
POISONED = "poisoned"


class QueueError(ValueError):
    """Base class for queue protocol violations (HTTP-mappable)."""


class UnknownJob(QueueError):
    pass


class UnknownLease(QueueError):
    pass


class ExpiredLease(QueueError):
    pass


class RejectedManifest(QueueError):
    pass


def point_label(overrides: Mapping[str, Any]) -> str:
    """Canonical short label for one sweep point (shared CLI spelling)."""
    return ", ".join(f"{k}={overrides[k]!r}" for k in overrides) or "(base)"


def format_point_line(
    spec_name: str, overrides: Mapping[str, Any], status: str
) -> str:
    """One per-point progress line, identical for ``sweep`` and ``work``."""
    return f"  [{status:>7}] {spec_name}: {point_label(overrides)}"


@dataclass
class SweepPoint:
    """One grid point of one job."""

    index: int
    overrides: dict[str, Any]
    params: dict[str, Any]
    key: str
    state: str = PENDING
    attempts: int = 0
    lease_id: str | None = None
    error: str | None = None


@dataclass
class Lease:
    """One worker's claim on a batch of points."""

    lease_id: str
    job_id: str
    worker: str
    indexes: tuple[int, ...]
    deadline: float
    lease_timeout_s: float
    alive: bool = True
    done: set[int] = field(default_factory=set)


@dataclass
class SweepJob:
    """One submitted sweep: a spec plus its full point grid."""

    job_id: str
    spec: ExperimentSpec
    quick: bool
    points: list[SweepPoint]
    max_attempts: int
    lease_timeout_s: float
    #: points not yet DONE/POISONED — kept incrementally so the
    #: terminal check on the complete/fail hot path is O(1)
    open_points: int = 0

    def counts(self) -> dict[str, int]:
        c = {PENDING: 0, LEASED: 0, DONE: 0, POISONED: 0}
        for p in self.points:
            c[p.state] += 1
        return c

    @property
    def state(self) -> str:
        c = self.counts()
        if c[PENDING] or c[LEASED]:
            return "running"
        return "failed" if c[POISONED] else "done"


class JobQueue:
    """Coordinator bookkeeping for queued sweeps.

    ``clock`` must be a monotonic zero-arg callable; all lease
    deadlines live on its timeline.  The queue itself is not locked —
    the serve layer calls it from a single event loop, and unit tests
    are single-threaded.

    ``journal`` (a :class:`~repro.runtime.journal.Journal`) makes the
    queue durable: every mutation is appended to the event log before
    the call returns, and the journal is compacted into a snapshot
    every ``journal.snapshot_every`` events.  :meth:`restore` is the
    other half — rebuild a queue from a state dir after a crash.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        lease_timeout_s: float = 60.0,
        max_attempts: int = 3,
        journal=None,
    ):
        if lease_timeout_s <= 0:
            raise ValueError(
                f"lease_timeout_s: expected a positive number, got "
                f"{lease_timeout_s!r}"
            )
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts: expected a positive integer, got "
                f"{max_attempts!r}"
            )
        self.clock = clock
        self.lease_timeout_s = lease_timeout_s
        self.max_attempts = max_attempts
        self.journal = journal
        self.jobs: dict[str, SweepJob] = {}
        self.leases: dict[str, Lease] = {}
        self._job_seq = 0
        self._lease_seq = 0
        # monitoring counters (exposed via /v1/stats)
        self.leases_granted = 0
        self.leases_expired = 0
        self.points_completed = 0
        self.points_failed = 0
        self.points_poisoned = 0
        self.manifests_rejected = 0

    # -- submission --------------------------------------------------

    def submit(
        self,
        spec: ExperimentSpec,
        points_overrides: Iterable[Mapping[str, Any]],
        *,
        quick: bool = False,
        lease_timeout_s: float | None = None,
        max_attempts: int | None = None,
        already_done: Callable[[SweepPoint], Mapping[str, Any] | None]
        | None = None,
    ) -> SweepJob:
        """Enqueue one sweep job over an explicit point grid.

        ``points_overrides`` is the deterministic grid enumeration
        (usually ``expand_grid(axes)``); each point's params and cache
        key are resolved here, once, on the coordinator's code — the
        reference a worker's upload must match.  ``already_done`` lets
        the caller pre-complete points whose manifests it already holds
        (a cache hit): it receives the resolved point and returns the
        manifest or ``None``.

        Per-job ``lease_timeout_s`` / ``max_attempts`` default to the
        queue-wide values when ``None`` and are validated like the
        constructor's otherwise — an explicit ``0`` is an error, not a
        silent fall-through to the default.
        """
        if lease_timeout_s is None:
            lease_timeout_s = self.lease_timeout_s
        elif lease_timeout_s <= 0:
            raise ValueError(
                f"lease_timeout_s: expected a positive number or None "
                f"(inherit the queue default), got {lease_timeout_s!r}"
            )
        if max_attempts is None:
            max_attempts = self.max_attempts
        elif max_attempts < 1:
            raise ValueError(
                f"max_attempts: expected a positive integer or None "
                f"(inherit the queue default), got {max_attempts!r}"
            )
        self._job_seq += 1
        job_id = f"job-{self._job_seq}"
        points = []
        for index, overrides in enumerate(points_overrides):
            params = spec.resolve_params(overrides, quick=quick)
            points.append(
                SweepPoint(
                    index=index,
                    overrides=dict(overrides),
                    params=params,
                    key=task_key(spec, params),
                )
            )
        job = SweepJob(
            job_id=job_id,
            spec=spec,
            quick=quick,
            points=points,
            max_attempts=max_attempts,
            lease_timeout_s=lease_timeout_s,
            open_points=len(points),
        )
        self.jobs[job_id] = job
        if already_done is not None:
            for point in points:
                manifest = already_done(point)
                if manifest is not None and manifest.get("key") == point.key:
                    point.state = DONE
                    job.open_points -= 1
                    self.points_completed += 1
        self._emit({
            "e": "submit",
            "job_id": job.job_id,
            "spec": spec.name,
            "quick": quick,
            "max_attempts": job.max_attempts,
            "lease_timeout_s": job.lease_timeout_s,
            "points": [
                {"index": p.index, "overrides": jsonify(p.overrides),
                 "params": jsonify(p.params), "key": p.key,
                 "state": p.state}
                for p in job.points
            ],
        })
        self._maybe_compact()
        return job

    def job(self, job_id: str) -> SweepJob:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(f"unknown job {job_id!r}") from None

    @property
    def all_terminal(self) -> bool:
        """True once jobs exist and none is still running.

        Workers use this as their exit signal: an empty coordinator is
        *not* terminal (the job may simply not have been submitted
        yet), so a worker started before the submission waits.
        """
        return bool(self.jobs) and all(
            j.open_points == 0 for j in self.jobs.values()
        )

    # -- leasing -----------------------------------------------------

    def lease(
        self,
        worker: str,
        max_points: int = 1,
        job_id: str | None = None,
    ) -> tuple[SweepJob, Lease, list[SweepPoint]] | None:
        """Grant up to ``max_points`` pending points to ``worker``.

        Jobs are drained in submission order (FIFO); a grant never
        spans jobs.  Returns ``None`` when nothing is pending.
        """
        if max_points < 1:
            raise ValueError(
                f"max_points: expected a positive integer, got "
                f"{max_points!r}"
            )
        self.expire()
        candidates: Sequence[SweepJob]
        if job_id is not None:
            candidates = (self.job(job_id),)
        else:
            candidates = tuple(self.jobs.values())
        for job in candidates:
            pending = [p for p in job.points if p.state == PENDING]
            if not pending:
                continue
            batch = pending[:max_points]
            self._lease_seq += 1
            lease = Lease(
                lease_id=f"lease-{self._lease_seq}",
                job_id=job.job_id,
                worker=worker,
                indexes=tuple(p.index for p in batch),
                deadline=self.clock() + job.lease_timeout_s,
                lease_timeout_s=job.lease_timeout_s,
            )
            for point in batch:
                point.state = LEASED
                point.lease_id = lease.lease_id
                point.attempts += 1
            self.leases[lease.lease_id] = lease
            self.leases_granted += 1
            self._emit({
                "e": "lease",
                "lease_id": lease.lease_id,
                "job_id": job.job_id,
                "worker": worker,
                "indexes": list(lease.indexes),
                "lease_timeout_s": job.lease_timeout_s,
            })
            self._maybe_compact()
            return job, lease, batch
        return None

    def _lease(self, lease_id: str) -> Lease:
        try:
            return self.leases[lease_id]
        except KeyError:
            raise UnknownLease(f"unknown lease {lease_id!r}") from None

    def heartbeat(self, lease_id: str) -> float:
        """Extend a live lease; returns the new deadline.

        Heartbeating an expired lease raises :class:`ExpiredLease` —
        the worker learns its points were re-queued and should abandon
        the batch rather than double-report it.
        """
        self.expire()
        lease = self._lease(lease_id)
        if not lease.alive:
            raise ExpiredLease(
                f"lease {lease_id!r} expired; its points were re-queued"
            )
        lease.deadline = self.clock() + lease.lease_timeout_s
        self._emit({"e": "heartbeat", "lease_id": lease_id})
        self._maybe_compact()
        return lease.deadline

    def expire(self) -> int:
        """Reap overdue leases, re-queueing or poisoning their points."""
        now = self.clock()
        reaped = []
        for lease in self.leases.values():
            if not lease.alive or lease.deadline > now:
                continue
            lease.alive = False
            self.leases_expired += 1
            reaped.append(lease)
            self._void_lease_points(lease)
            self._emit({"e": "expire", "lease_id": lease.lease_id})
        for lease in reaped:
            self._prune_if_terminal(self.jobs[lease.job_id])
        self._maybe_compact()
        return len(reaped)

    def _void_lease_points(self, lease: Lease) -> None:
        """Re-queue (or poison) the unfinished points of a dead lease."""
        job = self.jobs[lease.job_id]
        for index in lease.indexes:
            point = job.points[index]
            if point.state == LEASED and point.lease_id == lease.lease_id:
                self._requeue_or_poison(
                    job, point,
                    f"lease {lease.lease_id} expired "
                    f"(worker {lease.worker})",
                )

    def _requeue_or_poison(
        self, job: SweepJob, point: SweepPoint, error: str
    ) -> None:
        point.lease_id = None
        point.error = error
        if point.attempts >= job.max_attempts:
            point.state = POISONED
            job.open_points -= 1
            self.points_poisoned += 1
        else:
            point.state = PENDING

    def _prune_if_terminal(self, job: SweepJob) -> None:
        """Drop a terminal job's leases (late completes now 404).

        Until the job is terminal every lease — even an expired one —
        is retained so a slow worker's late ``complete`` still lands;
        once nothing in the job can change, keeping them is a leak.
        """
        if job.open_points:
            return
        stale = [lease_id for lease_id, lease in self.leases.items()
                 if lease.job_id == job.job_id]
        for lease_id in stale:
            del self.leases[lease_id]

    # -- completion --------------------------------------------------

    def complete(
        self, lease_id: str, index: int, manifest: Mapping[str, Any]
    ) -> SweepPoint:
        """Accept one point's manifest from the lease holder.

        Validates the manifest against the coordinator's own resolved
        key for the point (:class:`RejectedManifest` on mismatch —
        version-skewed worker).  Idempotent, and accepted even after
        the lease expired: valid finished work is never discarded.
        """
        self.expire()
        lease = self._lease(lease_id)
        job = self.jobs[lease.job_id]
        point = self._point(job, lease, index)
        if manifest.get("spec") != job.spec.name \
                or manifest.get("key") != point.key:
            self.manifests_rejected += 1
            raise RejectedManifest(
                f"{job.job_id} point {index}: manifest key "
                f"{manifest.get('key')!r} does not match the expected "
                f"{point.key!r} — worker code or parameters out of sync "
                f"with the coordinator"
            )
        if point.state != DONE:
            if point.state != POISONED:
                job.open_points -= 1
            point.state = DONE
            point.lease_id = None
            point.error = None
            self.points_completed += 1
        lease.done.add(index)
        self._emit({"e": "complete", "lease_id": lease_id, "index": index})
        self._prune_if_terminal(job)
        self._maybe_compact()
        return point

    def fail(self, lease_id: str, index: int, error: str) -> SweepPoint:
        """Record a worker-reported failure for one leased point."""
        self.expire()
        lease = self._lease(lease_id)
        job = self.jobs[lease.job_id]
        point = self._point(job, lease, index)
        if point.state == LEASED and point.lease_id == lease_id:
            self.points_failed += 1
            self._requeue_or_poison(job, point, error)
            self._emit({"e": "fail", "lease_id": lease_id, "index": index,
                        "error": error})
            self._prune_if_terminal(job)
            self._maybe_compact()
        return point

    def _point(self, job: SweepJob, lease: Lease, index: int) -> SweepPoint:
        if index not in lease.indexes:
            raise QueueError(
                f"point {index} is not part of lease {lease.lease_id!r} "
                f"(leased: {list(lease.indexes)})"
            )
        return job.points[index]

    # -- monitoring --------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "jobs": len(self.jobs),
            "leases_live": len(self.leases),
            "leases_granted": self.leases_granted,
            "leases_expired": self.leases_expired,
            "points_completed": self.points_completed,
            "points_failed": self.points_failed,
            "points_poisoned": self.points_poisoned,
            "manifests_rejected": self.manifests_rejected,
        }

    # -- durability --------------------------------------------------

    _COUNTERS = ("leases_granted", "leases_expired", "points_completed",
                 "points_failed", "points_poisoned", "manifests_rejected")

    def _emit(self, event: dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.record(event)

    def _maybe_compact(self) -> None:
        """Fold the journal into a snapshot once it has grown enough.

        Called at the *end* of each public mutator, never from
        :meth:`_emit`: a snapshot taken mid-operation (events recorded
        but pruning not yet run) would capture a state replay can never
        reach, because replay applies each event atomically.
        """
        if self.journal is not None and self.journal.compaction_due:
            self.journal.compact(self.dump_state())

    def dump_state(self) -> dict[str, Any]:
        """Full JSON-able queue state (the journal's snapshot payload).

        Lease deadlines are stored as ``remaining_s`` relative to this
        queue's clock, so the dump carries no absolute timestamps.
        """
        now = self.clock()
        return {
            "job_seq": self._job_seq,
            "lease_seq": self._lease_seq,
            "counters": {name: getattr(self, name)
                         for name in self._COUNTERS},
            "jobs": [
                {
                    "job_id": job.job_id,
                    "spec": job.spec.name,
                    "quick": job.quick,
                    "max_attempts": job.max_attempts,
                    "lease_timeout_s": job.lease_timeout_s,
                    "points": [
                        {"index": p.index,
                         "overrides": jsonify(p.overrides),
                         "params": jsonify(p.params),
                         "key": p.key, "state": p.state,
                         "attempts": p.attempts,
                         "lease_id": p.lease_id, "error": p.error}
                        for p in job.points
                    ],
                }
                for job in self.jobs.values()
            ],
            "leases": [
                {
                    "lease_id": lease.lease_id,
                    "job_id": lease.job_id,
                    "worker": lease.worker,
                    "indexes": list(lease.indexes),
                    "remaining_s": lease.deadline - now,
                    "lease_timeout_s": lease.lease_timeout_s,
                    "alive": lease.alive,
                    "done": sorted(lease.done),
                }
                for lease in self.leases.values()
            ],
        }

    def _load_state(
        self,
        state: Mapping[str, Any],
        specs: Callable[[str], ExperimentSpec],
    ) -> None:
        now = self.clock()
        self._job_seq = state["job_seq"]
        self._lease_seq = state["lease_seq"]
        for name in self._COUNTERS:
            setattr(self, name, state["counters"][name])
        for blob in state["jobs"]:
            points = [
                SweepPoint(
                    index=p["index"], overrides=dict(p["overrides"]),
                    params=dict(p["params"]), key=p["key"],
                    state=p["state"], attempts=p["attempts"],
                    lease_id=p["lease_id"], error=p["error"],
                )
                for p in blob["points"]
            ]
            job = SweepJob(
                job_id=blob["job_id"],
                spec=self._spec_for(blob["spec"], specs),
                quick=blob["quick"],
                points=points,
                max_attempts=blob["max_attempts"],
                lease_timeout_s=blob["lease_timeout_s"],
                open_points=sum(p.state in (PENDING, LEASED)
                                for p in points),
            )
            self.jobs[job.job_id] = job
        for blob in state["leases"]:
            lease = Lease(
                lease_id=blob["lease_id"], job_id=blob["job_id"],
                worker=blob["worker"], indexes=tuple(blob["indexes"]),
                deadline=now + blob["remaining_s"],
                lease_timeout_s=blob["lease_timeout_s"],
                alive=blob["alive"], done=set(blob["done"]),
            )
            self.leases[lease.lease_id] = lease

    @staticmethod
    def _spec_for(
        name: str, specs: Callable[[str], ExperimentSpec]
    ) -> ExperimentSpec:
        try:
            return specs(name)
        except KeyError:
            raise ValueError(
                f"journaled state references experiment spec {name!r}, "
                f"which this build does not register — the state dir "
                f"was written by different code"
            ) from None

    def _apply_event(
        self,
        event: Mapping[str, Any],
        specs: Callable[[str], ExperimentSpec],
    ) -> None:
        """Replay one journal event.

        Events record the queue's *decisions* (who leased what, which
        completes were first), so replay is pure bookkeeping — no
        clocks, no manifest re-validation — and deterministic by
        construction: the same event sequence always rebuilds the same
        state, which :meth:`dump_state` equality locks in the tests.
        """
        kind = event.get("e")
        if kind == "submit":
            points = [
                SweepPoint(
                    index=p["index"], overrides=dict(p["overrides"]),
                    params=dict(p["params"]), key=p["key"],
                    state=p["state"],
                )
                for p in event["points"]
            ]
            job = SweepJob(
                job_id=event["job_id"],
                spec=self._spec_for(event["spec"], specs),
                quick=event["quick"],
                points=points,
                max_attempts=event["max_attempts"],
                lease_timeout_s=event["lease_timeout_s"],
                open_points=sum(p.state in (PENDING, LEASED)
                                for p in points),
            )
            self.jobs[job.job_id] = job
            self.points_completed += sum(p.state == DONE for p in points)
            self._job_seq = max(self._job_seq,
                                _trailing_int(job.job_id))
        elif kind == "lease":
            job = self.jobs[event["job_id"]]
            lease = Lease(
                lease_id=event["lease_id"], job_id=event["job_id"],
                worker=event["worker"],
                indexes=tuple(event["indexes"]),
                deadline=self.clock() + event["lease_timeout_s"],
                lease_timeout_s=event["lease_timeout_s"],
            )
            for index in lease.indexes:
                point = job.points[index]
                point.state = LEASED
                point.lease_id = lease.lease_id
                point.attempts += 1
            self.leases[lease.lease_id] = lease
            self.leases_granted += 1
            self._lease_seq = max(self._lease_seq,
                                  _trailing_int(lease.lease_id))
        elif kind == "heartbeat":
            lease = self.leases[event["lease_id"]]
            if lease.alive:
                lease.deadline = self.clock() + lease.lease_timeout_s
        elif kind == "complete":
            lease = self.leases[event["lease_id"]]
            job = self.jobs[lease.job_id]
            point = job.points[event["index"]]
            if point.state != DONE:
                if point.state != POISONED:
                    job.open_points -= 1
                point.state = DONE
                point.lease_id = None
                point.error = None
                self.points_completed += 1
            lease.done.add(event["index"])
            self._prune_if_terminal(job)
        elif kind == "fail":
            lease = self.leases[event["lease_id"]]
            job = self.jobs[lease.job_id]
            point = job.points[event["index"]]
            if point.state == LEASED and point.lease_id == lease.lease_id:
                self.points_failed += 1
                self._requeue_or_poison(job, point, event["error"])
                self._prune_if_terminal(job)
        elif kind == "expire":
            # Live code reaps a batch of overdue leases and prunes
            # after the whole batch; replay prunes per event, so a
            # later event in the batch may name a lease pruning already
            # dropped.  Its voiding was a no-op (all points finished —
            # that's what made the job terminal), so only the counter
            # still applies.
            self.leases_expired += 1
            lease = self.leases.get(event["lease_id"])
            if lease is not None:
                lease.alive = False
                self._void_lease_points(lease)
                self._prune_if_terminal(self.jobs[lease.job_id])
        else:
            raise ValueError(f"unknown journal event kind {kind!r}")

    def _expire_outstanding(self, reason: str) -> int:
        """Void every live lease (conservative post-restore policy).

        The restored deadlines cannot be trusted — the coordinator may
        have been down for longer than any lease timeout, and the
        workers holding them may be gone.  Voiding re-queues their
        unfinished points under the normal retry budget; a worker that
        is in fact still alive simply re-leases (or lands its finished
        points via the late-complete path, since the dead lease objects
        are retained until the job is terminal).
        """
        voided = []
        for lease in self.leases.values():
            if not lease.alive:
                continue
            lease.alive = False
            self.leases_expired += 1
            voided.append(lease)
            job = self.jobs[lease.job_id]
            for index in lease.indexes:
                point = job.points[index]
                if point.state == LEASED \
                        and point.lease_id == lease.lease_id:
                    self._requeue_or_poison(
                        job, point,
                        f"lease {lease.lease_id} "
                        f"(worker {lease.worker}) voided: {reason}",
                    )
        for lease in voided:
            self._prune_if_terminal(self.jobs[lease.job_id])
        return len(voided)

    @classmethod
    def restore(
        cls,
        journal,
        *,
        specs: Callable[[str], ExperimentSpec],
        clock: Callable[[], float] = time.monotonic,
        lease_timeout_s: float = 60.0,
        max_attempts: int = 3,
        expire_outstanding: bool = True,
        compact: bool = True,
    ) -> "JobQueue":
        """Rebuild a queue from a state dir and attach the journal.

        Loads the snapshot, replays the journal tail, conservatively
        expires leases that were outstanding at crash time
        (``expire_outstanding``), then compacts the reconstructed state
        into a fresh snapshot so the next restart starts from it.  A
        fresh state dir yields an empty queue — ``restore`` doubles as
        "open or create".

        ``specs`` resolves a spec name to its registered
        :class:`~repro.runtime.spec.ExperimentSpec` (usually
        :func:`repro.runtime.spec.get_spec`); journaled state naming a
        spec this build does not register fails loudly.
        """
        state, events = journal.load()
        queue = cls(clock=clock, lease_timeout_s=lease_timeout_s,
                    max_attempts=max_attempts)
        if state is not None:
            queue._load_state(state, specs)
        for event in events:
            queue._apply_event(event, specs)
        if expire_outstanding:
            queue._expire_outstanding("coordinator restart")
        queue.journal = journal
        if compact:
            journal.compact(queue.dump_state())
        return queue


def _trailing_int(ident: str) -> int:
    """The numeric tail of a ``job-N`` / ``lease-N`` id (0 if none)."""
    try:
        return int(ident.rsplit("-", 1)[-1])
    except ValueError:
        return 0
