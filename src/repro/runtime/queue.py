"""Dynamic sweep work queue: jobs, leases, retries, poison points.

The queue is the coordinator-side state machine behind the serve
layer's ``/v1/jobs`` surface (:mod:`repro.serve.jobs`).  It is pure
bookkeeping — no HTTP, no threads, no wall clock of its own (callers
inject ``clock``; tests drive a fake one) — so lease expiry, bounded
retries, and quarantine are all unit-testable deterministically.

Life of a point::

    PENDING --lease()--> LEASED --complete()--> DONE
       ^                    |
       |   expiry / fail()  |  attempts < max_attempts
       +--------------------+
                            |  attempts >= max_attempts
                            +--> POISONED

A job's point grid comes from :func:`~repro.runtime.spec.expand_grid`
and is enumerated in the same deterministic order as a single-process
``mbs-repro sweep`` run; each point carries the content-addressed
:func:`~repro.runtime.cache.task_key` the coordinator expects its
manifest to land under.  An uploaded manifest whose key disagrees
(version-skewed worker code, wrong params) is rejected, which is the
whole byte-identity story: only manifests a local run would itself
have produced are ever accepted.

Completion is idempotent and never discards valid work: a manifest
arriving after its lease expired (slow worker, network partition that
healed) is still accepted if the point is not yet done and the key
matches.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.runtime.cache import task_key
from repro.runtime.spec import ExperimentSpec

PENDING = "pending"
LEASED = "leased"
DONE = "done"
POISONED = "poisoned"


class QueueError(ValueError):
    """Base class for queue protocol violations (HTTP-mappable)."""


class UnknownJob(QueueError):
    pass


class UnknownLease(QueueError):
    pass


class ExpiredLease(QueueError):
    pass


class RejectedManifest(QueueError):
    pass


def point_label(overrides: Mapping[str, Any]) -> str:
    """Canonical short label for one sweep point (shared CLI spelling)."""
    return ", ".join(f"{k}={overrides[k]!r}" for k in overrides) or "(base)"


def format_point_line(
    spec_name: str, overrides: Mapping[str, Any], status: str
) -> str:
    """One per-point progress line, identical for ``sweep`` and ``work``."""
    return f"  [{status:>7}] {spec_name}: {point_label(overrides)}"


@dataclass
class SweepPoint:
    """One grid point of one job."""

    index: int
    overrides: dict[str, Any]
    params: dict[str, Any]
    key: str
    state: str = PENDING
    attempts: int = 0
    lease_id: str | None = None
    error: str | None = None


@dataclass
class Lease:
    """One worker's claim on a batch of points."""

    lease_id: str
    job_id: str
    worker: str
    indexes: tuple[int, ...]
    deadline: float
    lease_timeout_s: float
    alive: bool = True
    done: set[int] = field(default_factory=set)


@dataclass
class SweepJob:
    """One submitted sweep: a spec plus its full point grid."""

    job_id: str
    spec: ExperimentSpec
    quick: bool
    points: list[SweepPoint]
    max_attempts: int
    lease_timeout_s: float

    def counts(self) -> dict[str, int]:
        c = {PENDING: 0, LEASED: 0, DONE: 0, POISONED: 0}
        for p in self.points:
            c[p.state] += 1
        return c

    @property
    def state(self) -> str:
        c = self.counts()
        if c[PENDING] or c[LEASED]:
            return "running"
        return "failed" if c[POISONED] else "done"


class JobQueue:
    """Coordinator bookkeeping for queued sweeps.

    ``clock`` must be a monotonic zero-arg callable; all lease
    deadlines live on its timeline.  The queue itself is not locked —
    the serve layer calls it from a single event loop, and unit tests
    are single-threaded.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        lease_timeout_s: float = 60.0,
        max_attempts: int = 3,
    ):
        if lease_timeout_s <= 0:
            raise ValueError(
                f"lease_timeout_s: expected a positive number, got "
                f"{lease_timeout_s!r}"
            )
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts: expected a positive integer, got "
                f"{max_attempts!r}"
            )
        self.clock = clock
        self.lease_timeout_s = lease_timeout_s
        self.max_attempts = max_attempts
        self.jobs: dict[str, SweepJob] = {}
        self.leases: dict[str, Lease] = {}
        self._job_seq = 0
        self._lease_seq = 0
        # monitoring counters (exposed via /v1/stats)
        self.leases_granted = 0
        self.leases_expired = 0
        self.points_completed = 0
        self.points_failed = 0
        self.points_poisoned = 0
        self.manifests_rejected = 0

    # -- submission --------------------------------------------------

    def submit(
        self,
        spec: ExperimentSpec,
        points_overrides: Iterable[Mapping[str, Any]],
        *,
        quick: bool = False,
        lease_timeout_s: float | None = None,
        max_attempts: int | None = None,
        already_done: Callable[[SweepPoint], Mapping[str, Any] | None]
        | None = None,
    ) -> SweepJob:
        """Enqueue one sweep job over an explicit point grid.

        ``points_overrides`` is the deterministic grid enumeration
        (usually ``expand_grid(axes)``); each point's params and cache
        key are resolved here, once, on the coordinator's code — the
        reference a worker's upload must match.  ``already_done`` lets
        the caller pre-complete points whose manifests it already holds
        (a cache hit): it receives the resolved point and returns the
        manifest or ``None``.
        """
        self._job_seq += 1
        job_id = f"job-{self._job_seq}"
        points = []
        for index, overrides in enumerate(points_overrides):
            params = spec.resolve_params(overrides, quick=quick)
            points.append(
                SweepPoint(
                    index=index,
                    overrides=dict(overrides),
                    params=params,
                    key=task_key(spec, params),
                )
            )
        job = SweepJob(
            job_id=job_id,
            spec=spec,
            quick=quick,
            points=points,
            max_attempts=max_attempts or self.max_attempts,
            lease_timeout_s=lease_timeout_s or self.lease_timeout_s,
        )
        self.jobs[job_id] = job
        if already_done is not None:
            for point in points:
                manifest = already_done(point)
                if manifest is not None and manifest.get("key") == point.key:
                    point.state = DONE
                    self.points_completed += 1
        return job

    def job(self, job_id: str) -> SweepJob:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(f"unknown job {job_id!r}") from None

    @property
    def all_terminal(self) -> bool:
        """True once jobs exist and none is still running.

        Workers use this as their exit signal: an empty coordinator is
        *not* terminal (the job may simply not have been submitted
        yet), so a worker started before the submission waits.
        """
        return bool(self.jobs) and all(
            j.state != "running" for j in self.jobs.values()
        )

    # -- leasing -----------------------------------------------------

    def lease(
        self,
        worker: str,
        max_points: int = 1,
        job_id: str | None = None,
    ) -> tuple[SweepJob, Lease, list[SweepPoint]] | None:
        """Grant up to ``max_points`` pending points to ``worker``.

        Jobs are drained in submission order (FIFO); a grant never
        spans jobs.  Returns ``None`` when nothing is pending.
        """
        if max_points < 1:
            raise ValueError(
                f"max_points: expected a positive integer, got "
                f"{max_points!r}"
            )
        self.expire()
        candidates: Sequence[SweepJob]
        if job_id is not None:
            candidates = (self.job(job_id),)
        else:
            candidates = tuple(self.jobs.values())
        for job in candidates:
            pending = [p for p in job.points if p.state == PENDING]
            if not pending:
                continue
            batch = pending[:max_points]
            self._lease_seq += 1
            lease = Lease(
                lease_id=f"lease-{self._lease_seq}",
                job_id=job.job_id,
                worker=worker,
                indexes=tuple(p.index for p in batch),
                deadline=self.clock() + job.lease_timeout_s,
                lease_timeout_s=job.lease_timeout_s,
            )
            for point in batch:
                point.state = LEASED
                point.lease_id = lease.lease_id
                point.attempts += 1
            self.leases[lease.lease_id] = lease
            self.leases_granted += 1
            return job, lease, batch
        return None

    def _lease(self, lease_id: str) -> Lease:
        try:
            return self.leases[lease_id]
        except KeyError:
            raise UnknownLease(f"unknown lease {lease_id!r}") from None

    def heartbeat(self, lease_id: str) -> float:
        """Extend a live lease; returns the new deadline.

        Heartbeating an expired lease raises :class:`ExpiredLease` —
        the worker learns its points were re-queued and should abandon
        the batch rather than double-report it.
        """
        self.expire()
        lease = self._lease(lease_id)
        if not lease.alive:
            raise ExpiredLease(
                f"lease {lease_id!r} expired; its points were re-queued"
            )
        lease.deadline = self.clock() + lease.lease_timeout_s
        return lease.deadline

    def expire(self) -> int:
        """Reap overdue leases, re-queueing or poisoning their points."""
        now = self.clock()
        reaped = 0
        for lease in self.leases.values():
            if not lease.alive or lease.deadline > now:
                continue
            lease.alive = False
            self.leases_expired += 1
            reaped += 1
            job = self.jobs[lease.job_id]
            for index in lease.indexes:
                point = job.points[index]
                if point.state == LEASED and point.lease_id == lease.lease_id:
                    self._requeue_or_poison(
                        job, point,
                        f"lease {lease.lease_id} expired "
                        f"(worker {lease.worker})",
                    )
        return reaped

    def _requeue_or_poison(
        self, job: SweepJob, point: SweepPoint, error: str
    ) -> None:
        point.lease_id = None
        point.error = error
        if point.attempts >= job.max_attempts:
            point.state = POISONED
            self.points_poisoned += 1
        else:
            point.state = PENDING

    # -- completion --------------------------------------------------

    def complete(
        self, lease_id: str, index: int, manifest: Mapping[str, Any]
    ) -> SweepPoint:
        """Accept one point's manifest from the lease holder.

        Validates the manifest against the coordinator's own resolved
        key for the point (:class:`RejectedManifest` on mismatch —
        version-skewed worker).  Idempotent, and accepted even after
        the lease expired: valid finished work is never discarded.
        """
        self.expire()
        lease = self._lease(lease_id)
        job = self.jobs[lease.job_id]
        point = self._point(job, lease, index)
        if manifest.get("spec") != job.spec.name \
                or manifest.get("key") != point.key:
            self.manifests_rejected += 1
            raise RejectedManifest(
                f"{job.job_id} point {index}: manifest key "
                f"{manifest.get('key')!r} does not match the expected "
                f"{point.key!r} — worker code or parameters out of sync "
                f"with the coordinator"
            )
        if point.state != DONE:
            point.state = DONE
            point.lease_id = None
            point.error = None
            self.points_completed += 1
        lease.done.add(index)
        return point

    def fail(self, lease_id: str, index: int, error: str) -> SweepPoint:
        """Record a worker-reported failure for one leased point."""
        self.expire()
        lease = self._lease(lease_id)
        job = self.jobs[lease.job_id]
        point = self._point(job, lease, index)
        if point.state == LEASED and point.lease_id == lease_id:
            self.points_failed += 1
            self._requeue_or_poison(job, point, error)
        return point

    def _point(self, job: SweepJob, lease: Lease, index: int) -> SweepPoint:
        if index not in lease.indexes:
            raise QueueError(
                f"point {index} is not part of lease {lease.lease_id!r} "
                f"(leased: {list(lease.indexes)})"
            )
        return job.points[index]

    # -- monitoring --------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "jobs": len(self.jobs),
            "leases_granted": self.leases_granted,
            "leases_expired": self.leases_expired,
            "points_completed": self.points_completed,
            "points_failed": self.points_failed,
            "points_poisoned": self.points_poisoned,
            "manifests_rejected": self.manifests_rejected,
        }
