"""End-to-end training workflow with the MBS executor.

A realistic user script: pick a residual CNN, choose an MBS sub-batch
size from the scheduler (the same machinery the accelerator uses), train
with gradient accumulation across sub-batches, checkpoint the best model,
and reload it for evaluation.

Run:  python examples/train_mbs_cnn.py
"""
import numpy as np

from repro.core.subbatch import feasible_sub_batch
from repro.graph.layers import NormKind
from repro.nn import NetworkModel, synthetic_dataset, train
from repro.nn.executor import evaluate
from repro.nn.serialize import load_weights, save_weights
from repro.types import KIB
from repro.zoo import toy_residual


def main() -> None:
    data = synthetic_dataset(train=512, val=128, noise=0.8, seed=7)
    net = toy_residual(norm=NormKind.GROUP)

    # size the sub-batch the way the accelerator would: what fits a
    # (hypothetical) 256 KiB on-chip buffer at the worst block?
    batch = 32
    sub_batch = min(
        feasible_sub_batch(b, 256 * KIB, batch) or batch for b in net.blocks
    )
    print(f"training {net.name} with mini-batch {batch}, "
          f"MBS sub-batch {sub_batch} (256 KiB buffer)")

    model = NetworkModel(net, seed=3, dtype=np.float32)
    result = train(
        model, data, epochs=6, batch=batch, lr=0.08, sub_batch=sub_batch,
        decay_epochs=(4,), label="mbs-training", seed=21,
    )
    for epoch, err in enumerate(result.val_error):
        print(f"  epoch {epoch}: val error {err * 100:5.1f}%  "
              f"train loss {result.train_loss[epoch]:.4f}")

    path = "/tmp/mbs_cnn_checkpoint.npz"
    save_weights(model, path)
    print(f"\ncheckpoint saved to {path}")

    restored = NetworkModel(net, seed=99, dtype=np.float32)  # fresh init
    load_weights(restored, path)
    stats = evaluate(restored, data.x_val, data.y_val)
    print(f"restored model val accuracy: {stats.accuracy * 100:.1f}% "
          f"(matches the trained model: "
          f"{abs(stats.accuracy - (1 - result.final_val_error)) < 1e-9})")


if __name__ == "__main__":
    main()
