"""Accelerator design-space exploration with the WaveCore simulator.

The paper's Sec. 6 punchline: MBS makes the accelerator robust to memory
system choices — a designer can trade the expensive HBM2 stack for
GDDR5/LPDDR4 or shrink the on-chip buffer with little performance loss.
This example sweeps both axes for ResNet-50 and Inception-v4 and prints
the cost/performance frontier a designer would look at.

Run:  python examples/accelerator_design_space.py
"""
from repro.core import make_schedule
from repro.types import MIB
from repro.wavecore import estimate_area, simulate_step
from repro.wavecore.config import config_for_policy
from repro.zoo import build

#: rough relative cost of the memory subsystem (per-GiB pricing folklore:
#: HBM is several times GDDR, which is above LPDDR)
MEMORY_COST = {"HBM2": 3.0, "HBM2x2": 6.0, "GDDR5": 1.5, "LPDDR4": 1.0}


def main() -> None:
    for net_name in ("resnet50", "inception_v4"):
        net = build(net_name)
        print(f"=== {net_name} ===")
        print(f"{'policy':8s} {'memory':8s} {'buffer':>7s} {'time ms':>8s} "
              f"{'energy J':>9s} {'die mm2':>8s} {'mem cost':>8s}")
        for policy in ("baseline", "mbs2"):
            for mem in ("HBM2x2", "HBM2", "GDDR5", "LPDDR4"):
                for buf_mib in (5, 10, 20):
                    sched = make_schedule(net, "baseline" if policy == "baseline"
                                          else policy,
                                          buffer_bytes=buf_mib * MIB)
                    cfg = config_for_policy(policy, memory=mem,
                                            buffer_bytes=buf_mib * MIB)
                    rep = simulate_step(net, sched, cfg)
                    area = estimate_area(cfg).total_mm2
                    print(f"{policy:8s} {mem:8s} {buf_mib:>4d}MiB "
                          f"{rep.time_s * 1e3:8.1f} "
                          f"{rep.energy.total_j:9.2f} {area:8.1f} "
                          f"{MEMORY_COST[mem]:8.1f}")
        print()

    print("Reading the frontier: with MBS2 the LPDDR4 + 5 MiB design point "
          "stays within ~15% of the HBM2x2 + 20 MiB flagship — the paper's "
          "'cheap memory' conclusion.")


if __name__ == "__main__":
    main()
