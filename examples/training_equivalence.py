"""MBS training numerics: sub-batch serialization does not change training.

Demonstrates the paper's Sec. 3/3.1 claims end to end on the NumPy
substrate:

1. with group normalization, MBS sub-batch gradient accumulation matches
   the full-mini-batch gradients to machine precision — for *any*
   sub-batch size;
2. with batch normalization it does not (hence the GN adaptation);
3. training a model with the MBS executor follows the exact same loss
   trajectory as conventional training.

Run:  python examples/training_equivalence.py
"""
import numpy as np

from repro.graph.layers import NormKind
from repro.nn import (
    NetworkModel,
    compute_gradients,
    mbs_gradients,
    synthetic_dataset,
    train,
)
from repro.zoo import toy_residual


def main() -> None:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(12, 3, 32, 32))
    y = rng.integers(0, 8, 12)

    print("1) gradient equivalence, GN, all sub-batch sizes:")
    net = toy_residual(norm=NormKind.GROUP)
    for sub in (1, 2, 3, 5, 12):
        full = NetworkModel(net, seed=4)
        mbs = NetworkModel(net, seed=4)
        full.zero_grads()
        compute_gradients(full, x, y)
        mbs.zero_grads()
        mbs_gradients(mbs, x, y, sub_batch=sub)
        diff = np.max(np.abs(full.gradient_vector() - mbs.gradient_vector()))
        print(f"   sub-batch={sub:2d}: max |grad diff| = {diff:.2e}")

    print("\n2) the same probe with batch normalization:")
    net_bn = toy_residual(norm=NormKind.BATCH)
    full = NetworkModel(net_bn, seed=4)
    mbs = NetworkModel(net_bn, seed=4)
    full.zero_grads()
    compute_gradients(full, x, y)
    mbs.zero_grads()
    mbs_gradients(mbs, x, y, sub_batch=4)
    diff = np.max(np.abs(full.gradient_vector() - mbs.gradient_vector()))
    print(f"   sub-batch=4 : max |grad diff| = {diff:.2e}  "
          "(BN statistics couple the mini-batch)")

    print("\n3) training trajectories, conventional vs MBS executor:")
    data = synthetic_dataset(train=256, val=128, seed=1)
    net = toy_residual(norm=NormKind.GROUP)
    conv = train(NetworkModel(net, seed=6), data, epochs=3, batch=16,
                 label="conventional", seed=42)
    mbs = train(NetworkModel(net, seed=6), data, epochs=3, batch=16,
                sub_batch=4, label="mbs", seed=42)
    for e, (a, b) in enumerate(zip(conv.train_loss, mbs.train_loss)):
        print(f"   epoch {e}: loss conventional={a:.6f}  mbs={b:.6f}  "
              f"val err {conv.val_error[e]:.3f} / {mbs.val_error[e]:.3f}")
    print("   (identical trajectories — serialization is invisible to "
          "the optimizer)")


if __name__ == "__main__":
    main()
