"""Drive the experiment runtime from Python: parallel sweeps + caching.

The ``mbs-repro`` CLI is a thin shell over :mod:`repro.runtime`; this
example uses the library API directly — expand a parameter grid for the
Fig. 3 footprint experiment, shard it across two worker processes, then
re-run the same grid to show every point coming back from the
content-addressed cache.

Run:  python examples/parallel_experiments.py
"""
import tempfile

from repro.runtime import ResultCache, Task, expand_grid, get_spec, run_tasks


def main() -> None:
    import repro.experiments  # noqa: F401  (registers the specs)

    spec = get_spec("fig3")
    grid = expand_grid({
        "mini_batch": (16, 32, 64),
        "buffer_mib": (10, 20),
    })
    print(f"sweeping {spec.name} over {len(grid)} grid points\n")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        tasks = [Task(spec, point) for point in grid]

        cold = run_tasks(tasks, jobs=2, cache=cache)
        for task, r in zip(tasks, cold):
            frac = r.artifact["reusable_fraction"] * 100
            print(f"  {task.overrides}  ->  {r.status:6s} "
                  f"reusable={frac:4.1f}%  key={r.key}")

        warm = run_tasks(tasks, jobs=2, cache=cache)
        hits = sum(r.status == "cached" for r in warm)
        print(f"\nsecond pass: {hits}/{len(warm)} cache hits "
              "(no produce-fn re-ran)")
        assert hits == len(warm)

        # the cache is content-addressed: same params -> same manifest
        assert [r.key for r in cold] == [r.key for r in warm]
    print("cache keys stable across passes")


if __name__ == "__main__":
    main()
