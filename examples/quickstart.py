"""Quickstart: schedule ResNet-50 training with MBS and simulate WaveCore.

Run:  python examples/quickstart.py
"""
from repro.core import compute_traffic, make_schedule
from repro.types import MIB
from repro.wavecore import simulate_step
from repro.wavecore.config import config_for_policy
from repro.zoo import resnet50


def main() -> None:
    net = resnet50()
    print(f"network: {net.name}  params={net.param_count:,}  "
          f"blocks={len(net)}  mini-batch={net.default_mini_batch}/core")

    # 1. build the MBS2 schedule for a 10 MiB on-chip buffer
    sched = make_schedule(net, "mbs2", buffer_bytes=10 * MIB)
    print("\n" + sched.describe())

    # 2. compare DRAM traffic against conventional training
    base = compute_traffic(net, make_schedule(net, "baseline"))
    mbs = compute_traffic(net, sched)
    print(f"\nDRAM traffic/step: baseline={base.total_bytes / 2**30:.2f} GiB "
          f"-> MBS2={mbs.total_bytes / 2**30:.2f} GiB "
          f"({base.total_bytes / mbs.total_bytes:.1f}x reduction)")

    # 3. simulate a full training step on the WaveCore accelerator
    rep_base = simulate_step(net, make_schedule(net, "baseline"),
                             config_for_policy("baseline"))
    rep_mbs = simulate_step(net, sched, config_for_policy("mbs2"))
    print(f"\nWaveCore step time: baseline={rep_base.time_s * 1e3:.1f} ms "
          f"-> MBS2={rep_mbs.time_s * 1e3:.1f} ms "
          f"({rep_base.time_s / rep_mbs.time_s:.2f}x speedup)")
    print(f"energy/step: baseline={rep_base.energy.total_j:.2f} J "
          f"-> MBS2={rep_mbs.energy.total_j:.2f} J")
    print(f"systolic utilization: {rep_mbs.utilization * 100:.1f}%")


if __name__ == "__main__":
    main()
