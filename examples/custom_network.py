"""Scheduling a user-defined CNN with MBS.

Shows the full public API surface a downstream user touches: define a
network in the graph IR (including a residual module), build schedules
under different policies, and inspect where the traffic goes.

Run:  python examples/custom_network.py
"""
from repro.core import compute_traffic, make_schedule
from repro.graph import Block, Branch, MergeKind, Network
from repro.graph.layers import Activation
from repro.types import MIB, Shape
from repro.zoo.common import ChainBuilder


def build_custom_net() -> Network:
    """A VGG-ish stem with one residual stage and a small head."""
    in_shape = Shape(3, 64, 64)
    blocks = []

    stem = ChainBuilder(prefix="stem", shape=in_shape)
    stem.cnr(32, 3, padding=1).cnr(32, 3, padding=1).max_pool(2, 2)
    blocks.append(Block("stem", in_shape, (Branch(stem.take()),)))
    shape = stem.shape

    # residual module: main path 3x3-3x3, identity shortcut
    main = ChainBuilder(prefix="res.main", shape=shape)
    main.cnr(32, 3, padding=1).cn(32, 3, padding=1)
    block = Block(
        "res",
        shape,
        (Branch(main.take()), Branch()),  # empty branch = identity
        merge=MergeKind.ADD,
        post_merge=(Activation(name="res.relu", in_shape=main.shape),),
    )
    blocks.append(block)
    shape = block.out_shape

    down = ChainBuilder(prefix="down", shape=shape)
    down.cnr(64, 3, stride=2, padding=1).cnr(128, 3, stride=2, padding=1)
    blocks.append(Block("down", shape, (Branch(down.take()),)))
    shape = down.shape

    head = ChainBuilder(prefix="head", shape=shape)
    head.global_avg_pool().fc(10)
    blocks.append(Block("head", shape, (Branch(head.take()),)))

    return Network("custom", in_shape, tuple(blocks), default_mini_batch=64)


def main() -> None:
    net = build_custom_net()
    print(f"{net.name}: {net.param_count:,} params, "
          f"{net.macs_per_sample / 1e6:.1f} MMACs/sample\n")

    for buf_mib in (1, 2, 4):
        print(f"--- on-chip buffer {buf_mib} MiB ---")
        for policy in ("baseline", "il", "mbs-fs", "mbs1", "mbs2"):
            sched = make_schedule(net, policy, buffer_bytes=buf_mib * MIB)
            rep = compute_traffic(net, sched)
            groups = len(sched.groups)
            print(f"  {policy:8s}: {rep.total_bytes / 2**20:8.1f} MiB DRAM "
                  f"({groups} groups)")
        print()

    # where does MBS2's remaining traffic go?
    sched = make_schedule(net, "mbs2", buffer_bytes=2 * MIB)
    rep = compute_traffic(net, sched)
    print("MBS2 traffic by category (2 MiB buffer):")
    for cat, nbytes in sorted(rep.by_category().items(),
                              key=lambda kv: -kv[1]):
        print(f"  {cat.value:18s} {nbytes / 2**20:8.1f} MiB")


if __name__ == "__main__":
    main()
