"""Setuptools shim.

The primary build configuration lives in pyproject.toml.  This file exists
so that environments without the ``wheel`` package (where PEP 660 editable
installs cannot build) can still do ``python setup.py develop`` /
``pip install -e . --no-build-isolation``.
"""
from setuptools import setup

setup()
