"""Micro-benchmarks for the library's hot paths (statistical timing)."""
import numpy as np
import pytest

from repro.core.cost import ProxyCostModel
from repro.core.grouping import GroupingProblem, exhaustive_grouping, greedy_grouping
from repro.core.policies import make_schedule
from repro.core.traffic import compute_traffic
from repro.nn import functional as F
from repro.systolic import run_gemm
from repro.wavecore.config import DEFAULT_CONFIG
from repro.wavecore.gemm import GemmDims
from repro.wavecore.simulator import simulate_step
from repro.wavecore.tiling import gemm_cycles
from repro.zoo import resnet50


@pytest.fixture(scope="module")
def rn50():
    return resnet50()


def test_bench_schedule_construction(benchmark, rn50):
    sched = benchmark(make_schedule, rn50, "mbs2")
    assert sched.num_blocks == len(rn50.blocks)


def test_bench_traffic_model(benchmark, rn50):
    sched = make_schedule(rn50, "mbs2")
    rep = benchmark(compute_traffic, rn50, sched)
    assert rep.total_bytes > 0


def test_bench_full_step_simulation(benchmark, rn50):
    sched = make_schedule(rn50, "mbs2")
    rep = benchmark(simulate_step, rn50, sched)
    assert rep.time_s > 0


def test_bench_gemm_cycle_model(benchmark):
    dims = GemmDims(100352, 64, 576)
    t = benchmark(gemm_cycles, dims, DEFAULT_CONFIG)
    assert t.cycles > 0


def _grouping_problem_args():
    """Fresh problem per round (pedantic setup, excluded from timing):
    GroupingProblem memoizes group costs, so reusing one instance across
    benchmark rounds would time dict hits instead of cost-model work."""
    rng = np.random.default_rng(0)
    problem = GroupingProblem(
        feasible=tuple(int(x) for x in rng.integers(1, 32, 60)),
        mini_batch=32,
        cost_model=ProxyCostModel(
            weight_bytes=tuple(int(x) for x in rng.integers(10**3, 10**7, 60)),
            out_bytes=tuple(int(x) for x in rng.integers(10**3, 10**6, 60)),
            mini_batch=32,
        ),
    )
    return (problem,), {}


def test_bench_greedy_grouping(benchmark):
    groups = benchmark.pedantic(
        greedy_grouping, setup=_grouping_problem_args, rounds=30
    )
    assert groups


def test_bench_exhaustive_grouping(benchmark):
    groups = benchmark.pedantic(
        exhaustive_grouping, setup=_grouping_problem_args, rounds=30
    )
    assert groups


def test_bench_conv2d_forward(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(8, 16, 32, 32)).astype(np.float32)
    w = rng.normal(size=(32, 16, 3, 3)).astype(np.float32)
    y = benchmark(F.conv2d_forward, x, w, None, 1, 1)
    assert y.shape == (8, 32, 32, 32)


def test_bench_conv2d_backward(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(8, 16, 32, 32)).astype(np.float32)
    w = rng.normal(size=(32, 16, 3, 3)).astype(np.float32)
    dy = rng.normal(size=(8, 32, 32, 32)).astype(np.float32)
    dx, dw, _ = benchmark(F.conv2d_backward, x, w, dy, 1, 1, False)
    assert dx.shape == x.shape


def test_bench_functional_systolic(benchmark):
    rng = np.random.default_rng(0)
    a = rng.normal(size=(64, 24))
    b = rng.normal(size=(24, 16))
    run = benchmark(run_gemm, a, b, 8, 8, 16, True)
    np.testing.assert_allclose(run.result, a @ b)
