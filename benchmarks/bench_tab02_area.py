"""Regenerates Tab. 2: area/power estimate."""
import pytest

from repro.experiments import tab02_area


def test_tab02_regeneration(once):
    res = once(tab02_area.run)
    assert res["area"].total_mm2 == pytest.approx(534.0, abs=1.0)
    assert res["tops_fp16"] == pytest.approx(45.9, abs=1.0)
    assert 40 < res["power_w"] < 80  # paper: 56 W (see DESIGN.md calibration)
