"""Benchmarks for the supporting substrates (occupancy, scaling, NN step)."""
import numpy as np
import pytest

from repro.core.occupancy import peak_occupancy, validate_schedule_occupancy
from repro.core.policies import make_schedule
from repro.nn import NetworkModel, compute_gradients, mbs_gradients
from repro.wavecore.scaling import weak_scaling
from repro.wavecore.timeline import build_timeline
from repro.zoo import resnet50, toy_residual


@pytest.fixture(scope="module")
def rn50():
    return resnet50()


def test_bench_occupancy_validation(benchmark, rn50):
    sched = make_schedule(rn50, "mbs2")
    violations = benchmark(validate_schedule_occupancy, rn50, sched)
    assert violations == []


def test_bench_block_occupancy(benchmark, rn50):
    block = rn50.block_named("conv3_1")
    peak = benchmark(peak_occupancy, block, 4, True)
    assert peak > 0


def test_bench_weak_scaling(benchmark, rn50):
    points = benchmark(weak_scaling, rn50, "mbs2", (1, 2, 4, 8, 16, 32))
    assert points[-1].scaling_efficiency > 0.9


def test_bench_timeline(benchmark, rn50):
    sched = make_schedule(rn50, "mbs2")
    segments = benchmark(build_timeline, rn50, sched)
    assert segments


def test_bench_nn_training_step_full(benchmark):
    net = toy_residual()
    model = NetworkModel(net, seed=0, dtype=np.float32)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, 3, 32, 32)).astype(np.float32)
    y = rng.integers(0, 8, 16)

    def step():
        model.zero_grads()
        return compute_gradients(model, x, y)

    stats = benchmark(step)
    assert stats.samples == 16


def test_bench_nn_training_step_mbs(benchmark):
    net = toy_residual()
    model = NetworkModel(net, seed=0, dtype=np.float32)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, 3, 32, 32)).astype(np.float32)
    y = rng.integers(0, 8, 16)

    def step():
        model.zero_grads()
        return mbs_gradients(model, x, y, sub_batch=4)

    stats = benchmark(step)
    assert stats.samples == 16
