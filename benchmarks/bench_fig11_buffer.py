"""Regenerates Fig. 11: buffer-size sensitivity for ResNet-50."""
from repro.experiments import fig11_buffer_sweep


def test_fig11_regeneration(once):
    res = once(fig11_buffer_sweep.run)
    norm = res["normalized"]
    # paper's punchline: MBS2@5MiB beats IL@40MiB on both axes
    assert norm[("mbs2", 5)]["time"] < norm[("il", 40)]["time"]
    assert norm[("mbs2", 5)]["traffic"] < norm[("il", 40)]["traffic"]
    # MBS is flat across buffer sizes; IL is not
    mbs_range = [norm[("mbs2", b)]["time"] for b in (5, 10, 20, 30, 40)]
    il_range = [norm[("il", b)]["time"] for b in (5, 10, 20, 30, 40)]
    assert max(mbs_range) - min(mbs_range) < il_range[0] - il_range[-1] + 0.2
