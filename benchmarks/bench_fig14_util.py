"""Regenerates Fig. 14: systolic utilization (unlimited bandwidth)."""
import pytest

from repro.experiments import fig14_utilization


def test_fig14_regeneration(once):
    res = once(fig14_utilization.run)
    avg = res["average"]
    assert avg["baseline"] == pytest.approx(0.538, abs=0.06)
    assert avg["archopt"] == pytest.approx(0.815, abs=0.06)
    assert avg["mbs-fs"] == pytest.approx(0.667, abs=0.06)
    assert avg["mbs1"] == pytest.approx(0.786, abs=0.06)
