"""Regenerates Fig. 4 / Fig. 5: MBS grouping for ResNet-50."""
from repro.experiments import fig04_grouping


def test_fig04_regeneration(once):
    res = once(fig04_grouping.run)
    groups = res["groups"]
    # Fig. 5 structure: a handful of groups, iterations decreasing,
    # sub-batches growing with depth
    assert 3 <= len(groups) <= 8
    iters = [g["iterations"] for g in groups]
    assert iters == sorted(iters, reverse=True)
    subs = [g["sub_batch"] for g in groups]
    assert subs == sorted(subs)
