"""Regenerates Fig. 3: ResNet-50 per-layer footprints."""
from repro.experiments import fig03_footprint


def test_fig03_regeneration(once):
    res = once(fig03_footprint.run)
    sizes = [s.inter_layer_bytes for s in res["layers"]]
    assert sizes == sorted(sizes, reverse=True)
    assert res["reusable_fraction"] < 0.15  # paper: 9.3%
    # the big early layers are tens of MB at N=32 (Fig. 3's y-axis)
    assert sizes[0] > 50 * 2**20
