"""Regenerates the headline numbers and the grouping ablation."""
import pytest

from repro.experiments import ablation_grouping, headline


def test_headline_regeneration(once):
    res = once(headline.run)
    avg = res["average"]
    assert avg["traffic_cut_x"] == pytest.approx(4.0, abs=0.6)   # paper 4.0x
    assert avg["traffic_saving"] == pytest.approx(0.75, abs=0.05)  # paper 75%
    assert avg["energy_saving"] == pytest.approx(0.26, abs=0.08)   # paper 26%


def test_ablation_regeneration(once):
    res = once(ablation_grouping.run)
    for net, out in res["rows"].items():
        for policy_res in out.values():
            # the DP is optimal for the grouping *cost proxy*; measured
            # end-to-end traffic can deviate by a sliver in either
            # direction (paper footnote 1: "roughly 1%")
            assert policy_res["optimal"] <= policy_res["greedy"] * 1.005
            assert -0.005 < policy_res["gap"] < 0.05
