"""Regenerates Fig. 13: V100 vs WaveCore+MBS2."""
from repro.experiments import fig13_gpu_comparison


def test_fig13_regeneration(once):
    res = once(fig13_gpu_comparison.run)
    for net, row in res["rows"].items():
        for mem, speedup in row["speedup"].items():
            assert speedup > 1.0, (net, mem)
    # the gap widens with ResNet depth (paper Sec. 6)
    lp = {n: res["rows"][n]["speedup"]["LPDDR4"] for n in res["rows"]}
    assert lp["resnet50"] < lp["resnet152"]
