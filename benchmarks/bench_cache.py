"""Benchmarks for dependency-scoped cache fingerprints.

The headline measurement is *warm-hit retention*: touch one leaf
experiment driver in a private copy of the package tree, re-fingerprint
every registered spec, and assert (inside the timed region's setup)
that exactly one spec went cold.  Under the old monolithic
``code_fingerprint`` the same edit invalidated all of them, so this
benchmark doubles as the regression lock for the per-spec scoping.

The micro-benchmarks time the analyzer itself — cold closure walks and
the memoized fingerprint path that ``task_key`` hits on every call.
"""
import shutil
from pathlib import Path

import pytest

import repro
from repro.runtime import (
    ImportGraph,
    all_specs,
    module_fingerprint,
    reset_fingerprint_caches,
)


@pytest.fixture(scope="module")
def spec_modules():
    import repro.experiments  # noqa: F401  (registers the specs)

    return {spec.name: spec.module for spec in all_specs()}


@pytest.fixture(scope="module")
def repro_copy(tmp_path_factory):
    src = Path(repro.__file__).resolve().parent
    dst = tmp_path_factory.mktemp("pkgcopy") / "repro"
    shutil.copytree(src, dst,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return dst


def test_bench_import_graph_closure_cold(benchmark, spec_modules):
    """Full cold walk: parse + resolve the whole spec closure."""
    root = Path(repro.__file__).resolve().parent

    def cold():
        return ImportGraph(root).closure("repro.experiments.energy_sweep")

    closure = benchmark(cold)
    assert "repro.experiments.energy_sweep" in closure


def test_bench_spec_fingerprint_cold(benchmark, spec_modules):
    """Uncached per-spec fingerprint — the first task_key of a run."""

    def cold():
        reset_fingerprint_caches()
        return module_fingerprint(spec_modules["energy_sweep"])

    assert len(benchmark(cold)) == 16


def test_bench_spec_fingerprint_warm(benchmark, spec_modules):
    """Memoized path — what every task_key after the first pays."""
    module_fingerprint(spec_modules["energy_sweep"])
    fp = benchmark(module_fingerprint, spec_modules["energy_sweep"])
    assert len(fp) == 16


def test_bench_warm_hit_retention_after_leaf_touch(
        benchmark, repro_copy, spec_modules):
    """Re-fingerprint every spec after a leaf edit; only the touched
    driver's spec may change — the rest of the cache stays warm."""
    before = {
        name: ImportGraph(repro_copy).fingerprint(mod)
        for name, mod in spec_modules.items()
    }
    target = repro_copy / "experiments" / "energy_sweep.py"
    target.write_text(target.read_text() + "\n# touched\n")

    def refingerprint_all():
        graph = ImportGraph(repro_copy)
        return {name: graph.fingerprint(mod)
                for name, mod in spec_modules.items()}

    after = benchmark(refingerprint_all)
    changed = {name for name in before if after[name] != before[name]}
    assert changed == {"energy_sweep"}, (
        "leaf edit must cold-start exactly one spec"
    )
