"""Regenerates Fig. 6 (reduced size): BN vs GN+MBS vs no-norm training."""
from repro.experiments import fig06_normalization


def test_fig06_regeneration(once):
    res = once(
        fig06_normalization.run,
        epochs=4, train_samples=384, val_samples=128,
    )
    curves = res["curves"]
    # BN and GN+MBS both learn; un-normalized training lags badly
    assert curves["BN"].final_val_error < 0.3
    assert curves["GN+MBS"].final_val_error < 0.3
    assert curves["no-norm"].final_val_error > 0.5
    # gradient equivalence: exact for GN, broken for BN
    assert res["gradient_equivalence"]["GN"] < 1e-10
    assert res["gradient_equivalence"]["BN"] > 1e-4
