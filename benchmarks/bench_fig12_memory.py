"""Regenerates Fig. 12: memory-type sensitivity with layer breakdown."""
from repro.experiments import fig12_memory_types


def test_fig12_regeneration(once):
    res = once(fig12_memory_types.run)
    speedup = res["speedup"]
    # cheap LPDDR4 under MBS2 still beats the HBM2x2 conventional design
    assert speedup[("mbs2", "LPDDR4")] > speedup[("baseline", "HBM2x2")]
    # bandwidth sensitivity ordering: baseline degrades most
    base_drop = speedup[("baseline", "HBM2x2")] / speedup[("baseline", "LPDDR4")]
    mbs_drop = speedup[("mbs2", "HBM2x2")] / speedup[("mbs2", "LPDDR4")]
    assert base_drop > mbs_drop
