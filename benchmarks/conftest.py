"""Benchmark configuration.

Each paper table/figure has one benchmark that regenerates it end to end
(timed with a single round — these are full experiment sweeps), plus
micro-benchmarks for the hot kernels (traffic model, cycle model,
grouping optimizer, conv kernels) and the orchestration runtime
(bench_runtime.py: cache hits, key hashing, pool spin-up) that run with
normal statistics.

CI runs bench_micro_kernels.py on every push and uploads the
``--benchmark-json`` output as a workflow artifact (see
``.github/workflows/ci.yml``, job ``bench-smoke``).
"""
import pytest


@pytest.fixture()
def once(benchmark):
    """Run a heavy experiment exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
