"""Benchmarks for the orchestration runtime: key hashing, cache hits,
and engine overhead around a trivial experiment (tab2)."""
import pytest

from repro.runtime import (
    ResultCache,
    Task,
    code_fingerprint,
    get_spec,
    run_tasks,
    task_key,
)


@pytest.fixture(scope="module")
def tab2_spec():
    import repro.experiments  # noqa: F401  (registers the specs)

    return get_spec("tab2")


def test_bench_code_fingerprint_cold(benchmark):
    def cold():
        code_fingerprint.cache_clear()
        return code_fingerprint()

    assert len(benchmark(cold)) == 16


def test_bench_task_key(benchmark, tab2_spec):
    params = tab2_spec.resolve_params()
    key = benchmark(task_key, tab2_spec, params, "f" * 16)
    assert len(key) == 24


def test_bench_cache_lookup_hit(benchmark, tab2_spec, tmp_path):
    cache = ResultCache(tmp_path)
    (r,) = run_tasks([Task(tab2_spec)], cache=cache)
    assert r.status == "ran"
    manifest = benchmark(cache.lookup, "tab2", r.key)
    assert manifest is not None


def test_bench_engine_cached_path(benchmark, tab2_spec, tmp_path):
    """Full run_tasks round-trip when every task hits the cache."""
    cache = ResultCache(tmp_path)
    tasks = [Task(tab2_spec)]
    run_tasks(tasks, cache=cache)
    results = benchmark(run_tasks, tasks, cache=cache)
    assert results[0].status == "cached"


def test_bench_pool_spinup_two_workers(once, tab2_spec, tmp_path):
    """Worker-pool overhead for two cheap tasks (single round)."""
    fig3 = get_spec("fig3")
    tasks = [Task(tab2_spec), Task(fig3)]
    results = once(
        run_tasks, tasks, jobs=2, cache=ResultCache(tmp_path),
        use_cache=False,
    )
    assert all(r.status == "ran" for r in results)
