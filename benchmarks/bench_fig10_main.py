"""Regenerates Fig. 10: the full 6-network × 6-configuration grid."""
from repro.experiments import fig10_main


def test_fig10_regeneration(once):
    res = once(fig10_main.run)
    grid = res["grid"]
    assert set(grid) == {
        "resnet50", "resnet101", "resnet152",
        "inception_v3", "inception_v4", "alexnet",
    }
    for net, cells in grid.items():
        assert set(cells) == set(res["policies"])
        # Fig. 10a ordering holds for every network
        assert cells["mbs2"]["time_s"] < cells["baseline"]["time_s"]
    # Fig. 10c: deep-CNN traffic ladder
    r50 = grid["resnet50"]
    assert r50["mbs2"]["dram_bytes"] < r50["mbs1"]["dram_bytes"] \
        < r50["mbs-fs"]["dram_bytes"] < r50["baseline"]["dram_bytes"]
