"""Serving-path benchmarks: request latency over a live HTTP socket.

One real ``mbs-repro serve`` stack (engine + asyncio HTTP server) runs
in a background thread; the benchmarks drive it through a keep-alive
``http.client`` connection, so the timings include the full wire path
a user pays — parse, dedup/cache lookup, DP dispatch, JSON response.

Three regimes:

* **cold** — every request is a fresh (network, buffer) point: the
  full schedule search runs.
* **cached** — the same request repeated: served from the persistent
  result cache, no DP.
* **deduped burst** — eight identical concurrent requests at a fresh
  point: one DP fans out to all waiters.

``extra_info`` carries p50/p99 latency and throughput for the
artifact upload; the gated number (``benchmarks/baselines.json``) is
the pytest-benchmark median.
"""
import asyncio
import http.client
import itertools
import json
import statistics
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.runtime.cache import ResultCache
from repro.serve import ScheduleEngine, Server
from repro.types import KIB


class _LiveServer:
    """The serve stack on a private event loop in a daemon thread."""

    def __init__(self, cache_dir):
        self.loop = asyncio.new_event_loop()
        self.server = None
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)

            async def boot():
                engine = ScheduleEngine(
                    workers=0, batch_window_s=0.001,
                    cache=ResultCache(cache_dir),
                )
                self.server = Server(engine)
                await self.server.start()
                started.set()

            self.loop.run_until_complete(boot())
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("serve stack failed to start")

    @property
    def port(self):
        return self.server.port

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    stack = _LiveServer(tmp_path_factory.mktemp("serve-cache"))
    yield stack
    stack.close()


#: Fresh buffer sizes: each draw is a never-seen cache/dedup key.
_fresh_buffer = itertools.count(64 * KIB, 512)


def _wire(buffer_bytes):
    return {"schema": 1, "network": "toy_chain", "policy": "mbs-auto",
            "buffer_bytes": buffer_bytes, "objective": "traffic"}


def _post(conn, wire):
    conn.request("POST", "/v1/schedule", body=json.dumps(wire),
                 headers={"Content-Type": "application/json"})
    resp = conn.getresponse()
    body = json.loads(resp.read().decode())
    assert resp.status == 200, body
    return body


def _percentiles(latencies):
    ordered = sorted(latencies)
    return {
        "p50_ms": 1e3 * statistics.median(ordered),
        "p99_ms": 1e3 * ordered[min(len(ordered) - 1,
                                    int(0.99 * len(ordered)))],
    }


def test_bench_serve_cold_request(benchmark, live):
    """Full wire path + full DP: every request a fresh buffer point."""
    conn = http.client.HTTPConnection("127.0.0.1", live.port, timeout=60)
    try:
        latencies = []
        for _ in range(30):
            t0 = time.perf_counter()
            body = _post(conn, _wire(next(_fresh_buffer)))
            latencies.append(time.perf_counter() - t0)
            assert not body["cached"] and not body["degraded"]
        benchmark.extra_info.update(_percentiles(latencies))
        benchmark.extra_info["throughput_rps"] = (
            len(latencies) / sum(latencies))

        body = benchmark(lambda: _post(conn, _wire(next(_fresh_buffer))))
        assert body["result"]["traffic_bytes"] > 0
    finally:
        conn.close()


def test_bench_serve_cached_request(benchmark, live):
    """Wire path only: the repeated request hits the result cache."""
    conn = http.client.HTTPConnection("127.0.0.1", live.port, timeout=60)
    try:
        wire = _wire(next(_fresh_buffer))
        _post(conn, wire)  # warm the cache

        latencies = []
        for _ in range(50):
            t0 = time.perf_counter()
            body = _post(conn, wire)
            latencies.append(time.perf_counter() - t0)
            assert body["cached"] is True
        benchmark.extra_info.update(_percentiles(latencies))
        benchmark.extra_info["throughput_rps"] = (
            len(latencies) / sum(latencies))

        body = benchmark(lambda: _post(conn, wire))
        assert body["cached"] is True
    finally:
        conn.close()


def test_bench_serve_deduped_burst(benchmark, live):
    """Eight identical concurrent requests share one DP execution."""
    clients = ThreadPoolExecutor(max_workers=8)

    def burst():
        wire = _wire(next(_fresh_buffer))

        def one():
            conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                              timeout=60)
            try:
                return _post(conn, wire)
            finally:
                conn.close()

        return list(clients.map(lambda _: one(), range(8)))

    try:
        latencies = []
        for _ in range(10):
            t0 = time.perf_counter()
            bodies = burst()
            latencies.append(time.perf_counter() - t0)
            assert sum(1 for b in bodies if b["deduped"]) >= 1
        benchmark.extra_info.update(_percentiles(latencies))
        benchmark.extra_info["throughput_rps"] = (
            8 * len(latencies) / sum(latencies))

        bodies = benchmark(burst)
        first = bodies[0]["result"]
        assert all(b["result"] == first for b in bodies)
    finally:
        clients.shutdown()
