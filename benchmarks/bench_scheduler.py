"""Scheduling-time benchmarks: greedy vs exhaustive vs adaptive.

Inception-v4 is the stress case — the deepest multi-branch network in
the zoo, so its fusable windows give the grouping optimizers the most
work.  ``mbs-auto`` prices every candidate group with the byte-accurate
traffic walkers (memoized per block); these timings track what that
exactness costs over the closed-form proxy.
"""
import time

import pytest

from repro.core.cost import EnergyCostModel, TrafficCostModel
from repro.core.policies import (
    SweepCaches,
    clear_pricing_caches,
    make_schedule,
    sweep_schedules,
)
from repro.core.traffic import compute_traffic
from repro.types import KIB, MIB
from repro.wavecore.simulator import simulate_step
from repro.zoo import inception_v4


@pytest.fixture(scope="module")
def inc4():
    return inception_v4()


def _log_spaced_buffers(n: int, lo: int = 16 * KIB, hi: int = 4 * MIB):
    """``n`` log-spaced buffer sizes across the acceptance range."""
    ratio = (hi / lo) ** (1 / (n - 1))
    return [int(lo * ratio**i) for i in range(n)]


def test_bench_greedy_proxy_schedule(benchmark, inc4):
    sched = benchmark(make_schedule, inc4, "mbs2")
    assert sched.num_blocks == len(inc4.blocks)


def test_bench_exhaustive_proxy_schedule(benchmark, inc4):
    sched = benchmark(make_schedule, inc4, "mbs2-opt")
    assert sched.num_blocks == len(inc4.blocks)


def test_bench_adaptive_auto_schedule(benchmark, inc4):
    sched = benchmark(make_schedule, inc4, "mbs-auto")
    assert sched.num_blocks == len(inc4.blocks)


def test_bench_adaptive_auto_latency_schedule(benchmark, inc4):
    """The latency objective walks traffic AND prices GEMM timings per
    candidate group — this tracks what simulated seconds cost over
    simulated bytes."""
    sched = benchmark(
        make_schedule, inc4, "mbs-auto", objective="latency"
    )
    assert sched.num_blocks == len(inc4.blocks)
    assert sched.objective == "latency"


def test_bench_adaptive_auto_energy_schedule(benchmark, inc4):
    """The energy objective composes the traffic walk, the per-layer
    timing, AND the per-access energy constants per candidate group —
    this tracks what simulated joules cost over simulated seconds."""
    sched = benchmark(
        make_schedule, inc4, "mbs-auto", objective="energy"
    )
    assert sched.num_blocks == len(inc4.blocks)
    assert sched.objective == "energy"


def test_bench_adaptive_auto_lex_schedule(benchmark, inc4):
    """The lexicographic composite prices every candidate through both
    the latency and the traffic model; this tracks the tie-break's cost
    over the pure latency objective."""
    sched = benchmark(
        make_schedule, inc4, "mbs-auto", objective="latency+traffic"
    )
    assert sched.num_blocks == len(inc4.blocks)
    assert sched.objective == "latency+traffic"


def test_bench_sweep_schedules_energy(benchmark, inc4):
    """A full 48-point energy buffer sweep through the batch API —
    the workload the cross-sweep group-price memo exists for."""
    buffers = _log_spaced_buffers(48)

    def sweep():
        return sweep_schedules(inc4, "mbs-auto", buffers,
                               objective="energy")

    scheds = benchmark(sweep)
    assert len(scheds) == len(buffers)
    assert all(s.objective == "energy" for s in scheds)


def test_sweep_speedup_over_naive_loop(inc4):
    """Acceptance: a dense energy buffer sweep through
    :func:`sweep_schedules` is >= 10x faster than the naive per-point
    loop it replaces, with bit-identical schedules.

    The naive loop is the honest pre-batch-API cost: one cold
    :func:`make_schedule` per point (cross-call pricing caches cleared
    each time, exactly what a fresh per-point process would pay).  One
    timed pass each — the ratio's margin (~2x at 256 points) dwarfs
    timer noise, and a multi-round naive loop would take minutes."""
    buffers = _log_spaced_buffers(256)

    clear_pricing_caches(inc4)
    t0 = time.perf_counter()
    naive = []
    for buf in buffers:
        clear_pricing_caches(inc4)
        naive.append(make_schedule(inc4, "mbs-auto", buffer_bytes=buf,
                                   objective="energy"))
    naive_s = time.perf_counter() - t0

    clear_pricing_caches(inc4)
    caches = SweepCaches()
    t0 = time.perf_counter()
    swept = sweep_schedules(inc4, "mbs-auto", buffers,
                            objective="energy", caches=caches)
    swept_s = time.perf_counter() - t0

    assert swept == naive  # the speedup must be invisible in the output
    assert caches.hits > 0
    speedup = naive_s / swept_s
    assert speedup >= 10.0, (
        f"sweep API {speedup:.1f}x over naive loop "
        f"({naive_s:.2f}s vs {swept_s:.2f}s for {len(buffers)} points); "
        "acceptance floor is 10x"
    )


def test_bench_energy_cost_model_full_schedule(benchmark, inc4):
    """Pricing a complete schedule's joules through the cost model
    (cold memo), checked against the simulator it must reproduce."""
    sched = make_schedule(inc4, "mbs-auto", objective="energy")
    total = simulate_step(inc4, sched).energy.total_j

    def price():
        model = EnergyCostModel.for_schedule(inc4, sched)
        return model.schedule_cost(sched)

    assert benchmark(price) == total


def test_bench_traffic_cost_model_full_schedule(benchmark, inc4):
    """Pricing a complete schedule through the cost model (cold memo)."""
    sched = make_schedule(inc4, "mbs-auto")
    total = compute_traffic(inc4, sched).total_bytes

    def price():
        model = TrafficCostModel.for_schedule(inc4, sched)
        return model.schedule_cost(sched)

    assert benchmark(price) == total
