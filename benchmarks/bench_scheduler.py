"""Scheduling-time benchmarks: greedy vs exhaustive vs adaptive.

Inception-v4 is the stress case — the deepest multi-branch network in
the zoo, so its fusable windows give the grouping optimizers the most
work.  ``mbs-auto`` prices every candidate group with the byte-accurate
traffic walkers (memoized per block); these timings track what that
exactness costs over the closed-form proxy.
"""
import pytest

from repro.core.cost import EnergyCostModel, TrafficCostModel
from repro.core.policies import make_schedule
from repro.core.traffic import compute_traffic
from repro.wavecore.simulator import simulate_step
from repro.zoo import inception_v4


@pytest.fixture(scope="module")
def inc4():
    return inception_v4()


def test_bench_greedy_proxy_schedule(benchmark, inc4):
    sched = benchmark(make_schedule, inc4, "mbs2")
    assert sched.num_blocks == len(inc4.blocks)


def test_bench_exhaustive_proxy_schedule(benchmark, inc4):
    sched = benchmark(make_schedule, inc4, "mbs2-opt")
    assert sched.num_blocks == len(inc4.blocks)


def test_bench_adaptive_auto_schedule(benchmark, inc4):
    sched = benchmark(make_schedule, inc4, "mbs-auto")
    assert sched.num_blocks == len(inc4.blocks)


def test_bench_adaptive_auto_latency_schedule(benchmark, inc4):
    """The latency objective walks traffic AND prices GEMM timings per
    candidate group — this tracks what simulated seconds cost over
    simulated bytes."""
    sched = benchmark(
        make_schedule, inc4, "mbs-auto", objective="latency"
    )
    assert sched.num_blocks == len(inc4.blocks)
    assert sched.objective == "latency"


def test_bench_adaptive_auto_energy_schedule(benchmark, inc4):
    """The energy objective composes the traffic walk, the per-layer
    timing, AND the per-access energy constants per candidate group —
    this tracks what simulated joules cost over simulated seconds."""
    sched = benchmark(
        make_schedule, inc4, "mbs-auto", objective="energy"
    )
    assert sched.num_blocks == len(inc4.blocks)
    assert sched.objective == "energy"


def test_bench_adaptive_auto_lex_schedule(benchmark, inc4):
    """The lexicographic composite prices every candidate through both
    the latency and the traffic model; this tracks the tie-break's cost
    over the pure latency objective."""
    sched = benchmark(
        make_schedule, inc4, "mbs-auto", objective="latency+traffic"
    )
    assert sched.num_blocks == len(inc4.blocks)
    assert sched.objective == "latency+traffic"


def test_bench_energy_cost_model_full_schedule(benchmark, inc4):
    """Pricing a complete schedule's joules through the cost model
    (cold memo), checked against the simulator it must reproduce."""
    sched = make_schedule(inc4, "mbs-auto", objective="energy")
    total = simulate_step(inc4, sched).energy.total_j

    def price():
        model = EnergyCostModel.for_schedule(inc4, sched)
        return model.schedule_cost(sched)

    assert benchmark(price) == total


def test_bench_traffic_cost_model_full_schedule(benchmark, inc4):
    """Pricing a complete schedule through the cost model (cold memo)."""
    sched = make_schedule(inc4, "mbs-auto")
    total = compute_traffic(inc4, sched).total_bytes

    def price():
        model = TrafficCostModel.for_schedule(inc4, sched)
        return model.schedule_cost(sched)

    assert benchmark(price) == total
