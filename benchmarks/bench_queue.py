"""Work-queue benchmarks: lease grant latency, coordinator throughput.

Two regimes:

* **lease grant** — one in-process ``JobQueue`` lease+complete cycle
  against a pre-submitted job with prebuilt manifests: the pure
  bookkeeping cost a coordinator pays per point, no HTTP, no produce.
* **coordinator throughput** — a live HTTP coordinator drained by four
  synthetic worker threads that lease, fabricate the expected
  manifests (no real produce-fn — this times the *queue protocol*),
  and upload; the gated number is the wall-clock to drain a 64-point
  job over real sockets.

Both land in ``benchmarks/baselines.json`` and gate through
``scripts/bench_compare.py`` in the required ``bench-gate`` CI job.
"""
import asyncio
import http.client
import itertools
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.runtime.cache import spec_fingerprint, task_key
from repro.runtime.journal import Journal
from repro.runtime.queue import JobQueue
from repro.runtime.spec import ExperimentSpec, expand_grid, register
from repro.serve import JobHost, ScheduleEngine, Server


def _produce(x=0):
    return {"value": x}


SPEC = register(ExperimentSpec(
    name="bench_queue",
    title="synthetic queue benchmark spec",
    produce=_produce,
    artifact=("value",),
))

#: fresh axis values per submission so no run hits a previous job's keys
_fresh_x = itertools.count()


def _grid(n):
    return expand_grid({"x": [next(_fresh_x) for _ in range(n)]})


def _manifest(params, key):
    return {
        "spec": SPEC.name,
        "version": SPEC.version,
        "key": key,
        "fingerprint": spec_fingerprint(SPEC),
        "params": params,
        "artifact": _produce(**params),
        "rendered": "",
    }


def test_bench_queue_lease_grant(benchmark):
    """One lease+complete cycle of in-process queue bookkeeping."""
    queue = JobQueue(lease_timeout_s=3600.0)
    job = queue.submit(SPEC, _grid(4096))
    manifests = {p.index: _manifest(p.params, p.key) for p in job.points}

    def cycle():
        granted = queue.lease("bench-worker")
        assert granted is not None
        _, lease, points = granted
        queue.complete(lease.lease_id, points[0].index,
                       manifests[points[0].index])

    benchmark.pedantic(cycle, rounds=200, iterations=1)
    assert queue.points_completed >= 200


def test_bench_queue_lease_grant_journaled(benchmark, tmp_path):
    """The same cycle with ``--state-dir`` durability turned on.

    Each lease and complete now appends an fsync'd journal line before
    it is acknowledged — this case prices that overhead (the gap to
    ``lease_grant`` is the durability tax) and gates it from silently
    growing.  ``snapshot_every`` is raised past the ~400 events a run
    records so no compaction (a full 4096-point state dump) lands
    inside a measured cycle.
    """
    journal = Journal(tmp_path / "state", snapshot_every=1_000_000)
    queue = JobQueue(lease_timeout_s=3600.0, journal=journal)
    job = queue.submit(SPEC, _grid(4096))
    manifests = {p.index: _manifest(p.params, p.key) for p in job.points}

    def cycle():
        granted = queue.lease("bench-worker")
        assert granted is not None
        _, lease, points = granted
        queue.complete(lease.lease_id, points[0].index,
                       manifests[points[0].index])

    benchmark.pedantic(cycle, rounds=200, iterations=1)
    assert queue.points_completed >= 200
    assert journal.events_recorded >= 400  # every cycle hit the disk
    journal.close()


class _LiveCoordinator:
    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.server = None
        self.host = None
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)

            async def boot():
                self.host = JobHost(JobQueue(lease_timeout_s=3600.0))
                self.server = Server(ScheduleEngine(workers=0),
                                     jobs=self.host)
                await self.server.start()
                started.set()

            self.loop.run_until_complete(boot())
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("coordinator failed to start")

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)


@pytest.fixture(scope="module")
def live():
    stack = _LiveCoordinator()
    yield stack
    stack.close()


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path,
                     body=None if body is None else json.dumps(body),
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        out = json.loads(resp.read().decode())
        assert resp.status == 200, out
        return out
    finally:
        conn.close()


def test_bench_queue_coordinator_throughput(benchmark, live):
    """Drain a 64-point job through 4 synthetic HTTP workers.

    Workers lease in batches of 4 and upload the coordinator's own
    expected manifests — no produce-fn runs, so the time measured is
    the full wire protocol: lease grants, heartbeat-free completes,
    job polling, JSON codecs.
    """
    port = live.server.port
    workers = ThreadPoolExecutor(max_workers=4)

    def submit_round():
        # fresh axis values each round: no point is pre-completed, and
        # submission goes over the wire like everything else
        values = [next(_fresh_x) for _ in range(64)]
        job = _request(port, "POST", "/v1/jobs",
                       {"schema": 1, "artifact": SPEC.name,
                        "axes": {"x": values}})
        manifests = {}
        for index, x in enumerate(values):
            params = SPEC.resolve_params({"x": x})
            manifests[index] = _manifest(params, task_key(SPEC, params))
        return job["job_id"], manifests

    def drain(job_id, manifests, name):
        done = 0
        while True:
            out = _request(port, "POST", "/v1/lease",
                           {"schema": 1, "worker": name,
                            "max_points": 4, "job": job_id})
            grant = out["lease"]
            if grant is None:
                return done
            for point in grant["points"]:
                _request(
                    port, "POST",
                    f"/v1/lease/{grant['lease_id']}/complete",
                    {"schema": 1, "index": point["index"],
                     "manifest": manifests[point["index"]]},
                )
                done += 1

    def round_trip():
        job_id, manifests = submit_round()
        counts = list(workers.map(
            lambda i: drain(job_id, manifests, f"bench-w{i}"), range(4)))
        status = _request(port, "GET", f"/v1/jobs/{job_id}")
        assert status["state"] == "done", status
        return sum(counts)

    try:
        total = benchmark.pedantic(round_trip, rounds=5, iterations=1)
        assert total == 64
        stats = live.host.queue.stats()
        benchmark.extra_info["points_completed"] = (
            stats["points_completed"])
        benchmark.extra_info["leases_granted"] = stats["leases_granted"]
    finally:
        workers.shutdown()
